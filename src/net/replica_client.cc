#include "net/replica_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <random>

#include "dc/dc_api.h"
#include "net/frame.h"

namespace untx {

namespace {

/// Blocking full-buffer send; false on any hard error.
bool SendAll(int fd, const std::string& wire) {
  size_t pos = 0;
  while (pos < wire.size()) {
    ssize_t n =
        ::send(fd, wire.data() + pos, wire.size() - pos, MSG_NOSIGNAL);
    if (n > 0) {
      pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

ReplicaClient::ReplicaClient(DataComponent* dc, ReplicaClientOptions options)
    : dc_(dc), options_(std::move(options)) {}

ReplicaClient::~ReplicaClient() { Stop(); }

void ReplicaClient::Start() {
  if (!stop_.exchange(false)) return;  // already running
  thread_ = std::thread([this] { Run(); });
}

void ReplicaClient::Stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

void ReplicaClient::Run() {
  int backoff_ms = options_.reconnect_backoff_min_ms;
  std::mt19937 rng(options_.replica_id * 2654435761u + 17);
  // Sleeps in small slices so Stop() is never held up by a long backoff.
  auto interruptible_sleep = [&](int ms) {
    while (ms > 0 && !stop_.load()) {
      int slice = std::min(ms, 10);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      ms -= slice;
    }
  };
  while (!stop_.load()) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      interruptible_sleep(backoff_ms);
      continue;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    bool dialed = inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) ==
                      1 &&
                  ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) == 0;
    if (!dialed) {
      ::close(fd);
      reconnects_.fetch_add(1);
      // Jittered exponential backoff: up to +50% spread per dial.
      int jitter = static_cast<int>(rng() % (backoff_ms / 2 + 1));
      interruptible_sleep(backoff_ms + jitter);
      backoff_ms =
          std::min(backoff_ms * 2, options_.reconnect_backoff_max_ms);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Bounded recv so the loop keeps observing stop_.
    timeval tv{};
    tv.tv_usec = 100 * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    // Subscribe from our own durable position: whatever the wire lost
    // last session, this re-requests.
    ReplicaSubscribeRequest sub;
    sub.replica_id = options_.replica_id;
    sub.from_rlsn =
        (dc_->redo_log() != nullptr ? dc_->redo_log()->end() : 0) + 1;
    std::string body;
    sub.EncodeTo(&body);
    std::string wire;
    AppendFrame(static_cast<uint8_t>(MessageKind::kReplicaSubscribe),
                Slice(body), &wire);
    if (!SendAll(fd, wire)) {
      ::close(fd);
      reconnects_.fetch_add(1);
      interruptible_sleep(backoff_ms);
      continue;
    }
    connected_.store(true);
    backoff_ms = options_.reconnect_backoff_min_ms;

    FrameReader reader;
    char buf[64 * 1024];
    bool dead = false;
    while (!stop_.load() && !dead) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) break;  // EOF: primary gone
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        break;
      }
      reader.Feed(buf, static_cast<size_t>(n));
      uint8_t kind = 0;
      std::string fbody;
      while (reader.Next(&kind, &fbody) == FrameDecode::kOk) {
        if (static_cast<MessageKind>(kind) != MessageKind::kReplicaEntries) {
          continue;  // confused peer; harmless
        }
        Slice fb(fbody);
        ReplicaEntriesMessage msg;
        if (!ReplicaEntriesMessage::DecodeFrom(&fb, &msg)) {
          dead = true;
          break;
        }
        Status s = dc_->ApplyReplicated(msg);
        if (s.ok()) batches_applied_.fetch_add(1);
        // Ack the TRUE log end either way: on failure the primary's
        // stop-and-wait shipper rewinds to it and re-ships.
        ReplicaAckMessage ack;
        ack.replica_id = options_.replica_id;
        ack.acked_rlsn =
            dc_->redo_log() != nullptr ? dc_->redo_log()->end() : 0;
        std::string ack_body;
        ack.EncodeTo(&ack_body);
        std::string ack_wire;
        AppendFrame(static_cast<uint8_t>(MessageKind::kReplicaAck),
                    Slice(ack_body), &ack_wire);
        if (!SendAll(fd, ack_wire)) {
          dead = true;
          break;
        }
      }
      if (reader.corrupt()) break;
    }
    connected_.store(false);
    ::close(fd);
    if (!stop_.load()) reconnects_.fetch_add(1);
  }
}

}  // namespace untx
