// SocketServer: the DC side of the real-network deployment — one TCP
// listener per DataComponent multiplexing EVERY TC session onto one
// shared worker pool (vs the per-binding server threads of the channel
// transport). A reactor thread owns accept/read/write readiness; decoded
// request frames are handed to the pool, and replies are routed back to
// the session they arrived on.
//
// Crash semantics mirror ChannelTransport::ServerLoop: a reply from a
// crashed DC is suppressed (the TC's resend machinery will retry after
// RecoverDc). When a session closes — TC crash, network drop, or clean
// shutdown — the server evicts the DC-side scan cursors of the TCs that
// session served (no other live session still serving them), exactly as
// a TC reset would; the reply cache is kept for resend idempotence.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dc/data_component.h"
#include "util/thread_pool.h"

namespace untx {

namespace internal {
struct ServerImpl;
}  // namespace internal

struct SocketServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks; read it back via port().
  uint16_t port = 0;
  /// The shared pool all TC sessions multiplex onto.
  int workers = 2;
};

class SocketServer {
 public:
  SocketServer(DataComponent* dc, SocketServerOptions options);
  ~SocketServer();

  /// Binds + listens + starts the reactor and worker pool.
  Status Start();
  void Stop();

  /// Swaps the backend DC — hot-standby failover: the listener, sessions
  /// and worker pool survive; requests dispatch into the promoted DC.
  /// Atomic; each frame is served by one consistent backend.
  void Retarget(DataComponent* dc);

  /// The bound port (the chosen one when options.port was 0). Valid
  /// after a successful Start().
  uint16_t port() const;

  /// Live TC sessions (for tests: drops should shrink this).
  size_t session_count() const;
  /// Live sessions that subscribed as redo-shipping replicas.
  size_t replica_session_count() const;
  /// Sessions accepted over the server's lifetime.
  uint64_t sessions_accepted() const;
  /// Frames that failed to decode (corrupt stream → session closed).
  uint64_t corrupt_frames() const;
  /// High-water mark of reply bytes buffered toward one session — the
  /// socket analog of the reply channel's queued-scan residency that the
  /// credit window bounds.
  uint64_t max_queued_reply_bytes() const;

 private:
  std::unique_ptr<internal::ServerImpl> impl_;
};

}  // namespace untx
