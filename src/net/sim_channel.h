// SimChannel: simulated unidirectional message channel between the TC
// and a DC ("in a cloud environment asynchronous messages might be
// used", §4.2.1).
//
// Substitution note (DESIGN.md §2): stands in for a real datacenter
// network. Failure modes that matter to the interaction contracts are
// modeled: per-message random delay (which yields out-of-order delivery),
// message drop, and message duplication. The TC's resend daemon plus the
// DC's idempotence turn this lossy channel into exactly-once execution.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "common/random.h"

namespace untx {

struct ChannelOptions {
  uint32_t min_delay_us = 0;
  uint32_t max_delay_us = 0;
  /// Probability a message is silently dropped.
  double drop_prob = 0.0;
  /// Probability a message is delivered twice.
  double dup_prob = 0.0;
  uint64_t seed = 7;
};

/// Multi-producer, multi-consumer queue of byte strings with simulated
/// delivery latency. Messages become receivable when their delivery time
/// passes; random per-message delays reorder them.
class SimChannel {
 public:
  explicit SimChannel(ChannelOptions options = {});

  /// Enqueues (or drops / duplicates) a message.
  void Send(std::string msg);

  /// Blocks until a message is deliverable or timeout. Returns false on
  /// timeout or if the channel was closed and emptied.
  bool Receive(std::string* out, uint32_t timeout_ms);

  /// Non-blocking receive.
  bool TryReceive(std::string* out);

  /// Discards all in-flight messages (receiver crashed).
  void Clear();

  /// Closes the channel: Send becomes a no-op, receivers drain then fail.
  void Close();
  bool closed() const;

  // Stats.
  uint64_t sent() const;
  uint64_t delivered() const;
  uint64_t dropped() const;
  uint64_t duplicated() const;
  size_t InFlight() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct InFlightMsg {
    Clock::time_point deliver_at;
    uint64_t seq;  // tie-breaker to keep the priority queue deterministic
    std::string payload;
    bool operator>(const InFlightMsg& other) const {
      if (deliver_at != other.deliver_at) {
        return deliver_at > other.deliver_at;
      }
      return seq > other.seq;
    }
  };

  void Enqueue(std::string msg);

  ChannelOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<InFlightMsg, std::vector<InFlightMsg>,
                      std::greater<InFlightMsg>>
      queue_;
  Random rng_;
  uint64_t next_seq_ = 0;
  bool closed_ = false;
  uint64_t sent_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  uint64_t duplicated_ = 0;
};

}  // namespace untx
