// Length-prefixed, checksummed message framing shared by EVERY transport
// of the TC:DC wire protocol. One frame is:
//
//   [fixed32 length][fixed32 masked crc32c][u8 kind][body: length-1 bytes]
//
// where `length` counts the kind byte plus the body and the CRC covers
// exactly those bytes. The simulated channels (sim_channel /
// ChannelTransport) wrap each message as one complete frame, and the TCP
// transport streams the same bytes — so all three transports serialize
// identically and a capture from one parses on another.
//
// The codec deals in a raw `uint8_t` kind so it stays below the protocol
// layer; dc_api.h's WrapMessage/UnwrapMessage put MessageKind typing on
// top of it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/slice.h"

namespace untx {

/// Bytes before the kind byte: fixed32 length + fixed32 masked CRC.
inline constexpr size_t kFrameHeaderSize = 8;

/// Upper bound on length (kind + body). A frame claiming more is corrupt
/// — the bound keeps a garbage length prefix from provoking a giant
/// allocation before the CRC check can reject it.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

/// Appends one complete frame carrying (kind, body) to `dst`.
void AppendFrame(uint8_t kind, const Slice& body, std::string* dst);

/// One-frame convenience wrapper around AppendFrame.
std::string EncodeFrame(uint8_t kind, const Slice& body);

enum class FrameDecode : uint8_t {
  kOk = 0,        ///< A complete, checksum-valid frame was decoded.
  kNeedMore = 1,  ///< The buffer ends mid-frame; feed more bytes.
  kCorrupt = 2,   ///< Bad length or checksum; the stream is poisoned.
};

/// Decodes the frame at data[0, size). On kOk fills kind, body (aliasing
/// `data` — valid only while the buffer lives) and consumed (total frame
/// bytes). On kNeedMore, consumed is 0. On kCorrupt nothing is reliable;
/// a byte stream that produced it must be dropped, since frame
/// boundaries are unrecoverable.
FrameDecode DecodeFrame(const char* data, size_t size, uint8_t* kind,
                        Slice* body, size_t* consumed);

/// Incremental decoder for a TCP byte stream: Feed() arbitrary slices of
/// the stream, then drain complete frames with Next(). Partial reads,
/// frames split across reads and multiple frames per read all fold into
/// the same state machine. After kCorrupt the reader stays poisoned —
/// the connection must be torn down.
class FrameReader {
 public:
  void Feed(const char* data, size_t n);

  /// kOk: fills kind/body with the next frame (body is a copy, safe to
  /// keep). kNeedMore: no complete frame buffered. kCorrupt: poisoned.
  FrameDecode Next(uint8_t* kind, std::string* body);

  size_t buffered() const { return buf_.size() - pos_; }
  bool corrupt() const { return corrupt_; }

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_, compacted lazily
  bool corrupt_ = false;
};

}  // namespace untx
