#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace untx {
namespace internal {

class SocketReactor;

namespace {

using Clock = std::chrono::steady_clock;

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool ResolveV4(const std::string& host, uint16_t port, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  const char* addr = host == "localhost" ? "127.0.0.1" : host.c_str();
  return inet_pton(AF_INET, addr, &out->sin_addr) == 1;
}

}  // namespace

/// One TCP connection with reconnect state. fds are opened and closed
/// ONLY on the reactor thread; caller threads write to an open fd under
/// send_mu (the reactor also closes under send_mu, so a held lock
/// guarantees the fd stays valid).
class SocketConnection {
 public:
  enum class State : uint8_t {
    kDisconnected = 0,
    kConnecting = 1,
    kConnected = 2,
  };

  SocketConnection(std::vector<SocketEndpoint> endpoints,
                   const SocketTransportOptions& options,
                   std::weak_ptr<SocketReactor> reactor)
      : endpoints_(std::move(endpoints)),
        backoff_min_ms_(options.reconnect_backoff_min_ms),
        backoff_max_ms_(options.reconnect_backoff_max_ms),
        jitter_(options.reconnect_backoff_jitter),
        reactor_(std::move(reactor)),
        backoff_ms_(options.reconnect_backoff_min_ms),
        jitter_state_(0x9e3779b97f4a7c15ull ^
                      (endpoints_.empty() ? 0u : endpoints_.front().port)) {
    if (endpoints_.empty()) endpoints_.push_back(SocketEndpoint{});
  }

  using FrameHandler = std::function<void(uint8_t, const std::string&)>;

  /// handler_mu_ is held while a frame dispatches, so setting the
  /// handler to nullptr is a barrier: once it returns, no dispatch into
  /// the old handler is running — the client can be destroyed safely.
  void set_frame_handler(FrameHandler h) {
    std::lock_guard<std::mutex> guard(handler_mu_);
    on_frame_ = std::move(h);
  }

  void DispatchFrame(uint8_t kind, const std::string& body) {
    std::lock_guard<std::mutex> guard(handler_mu_);
    if (on_frame_) on_frame_(kind, body);
  }

  /// Caller-thread send: appends one encoded frame and drains what the
  /// socket will take now; the reactor finishes the rest on POLLOUT.
  /// Returns false (dropped) when there is no live connection.
  bool Send(const std::string& frame);

  bool connected() const { return connected_.load(); }
  uint64_t connect_epoch() const { return epoch_.load(); }

  bool WaitConnected(uint32_t timeout_ms) const {
    std::unique_lock<std::mutex> lock(wait_mu_);
    return wait_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                             [this] { return connected_.load(); });
  }

 private:
  friend class SocketReactor;

  void MarkConnectedLocked();  // send_mu_ held (reactor thread)
  void CloseLocked();          // send_mu_ held (reactor thread)

  /// Arms the next dial after a failure (send_mu_ held): jittered
  /// current backoff, rotation to the next alternate endpoint, and —
  /// once a full rotation has failed — exponential growth to the cap.
  void ArmRedialLocked() {
    // xorshift64: cheap per-connection jitter, no global RNG contention.
    jitter_state_ ^= jitter_state_ << 13;
    jitter_state_ ^= jitter_state_ >> 7;
    jitter_state_ ^= jitter_state_ << 17;
    const uint32_t spread =
        jitter_ > 0 ? static_cast<uint32_t>(backoff_ms_ * jitter_) : 0;
    const uint32_t delay =
        backoff_ms_ + (spread > 0 ? jitter_state_ % (spread + 1) : 0);
    next_attempt_ = Clock::now() + std::chrono::milliseconds(delay);
    if (endpoints_.size() > 1) {
      active_ = (active_ + 1) % endpoints_.size();
      if (active_ != 0) return;  // try the whole ring at this backoff
    }
    backoff_ms_ = std::min(backoff_ms_ * 2, backoff_max_ms_);
  }

  std::vector<SocketEndpoint> endpoints_;
  /// Which alternate the next dial targets (reactor thread only).
  size_t active_ = 0;
  const uint32_t backoff_min_ms_;
  const uint32_t backoff_max_ms_;
  const double jitter_;
  const std::weak_ptr<SocketReactor> reactor_;  // woken on buffered sends

  std::mutex send_mu_;
  int fd_ = -1;  // valid only while send_mu_ held (or on reactor thread)
  State state_ = State::kDisconnected;
  std::string out_;     // unsent bytes, drained on POLLOUT
  size_t out_pos_ = 0;
  bool want_write_ = false;

  // Reactor-thread-only reconnect bookkeeping.
  Clock::time_point next_attempt_{};
  uint32_t backoff_ms_;
  uint64_t jitter_state_;
  FrameReader reader_;
  bool stopped_ = false;

  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> epoch_{0};
  mutable std::mutex wait_mu_;
  mutable std::condition_variable wait_cv_;

  std::mutex handler_mu_;
  FrameHandler on_frame_;
};

/// The factory's shared poll loop: dials, redials, reads frames and
/// finishes partial writes for every registered connection.
class SocketReactor {
 public:
  ~SocketReactor() { Stop(); }

  void Register(const std::shared_ptr<SocketConnection>& conn) {
    {
      std::lock_guard<std::mutex> guard(mu_);
      conns_.push_back(conn);
      if (!running_) {
        running_ = true;
        thread_ = std::thread([this] { Loop(); });
      }
    }
    Wake();
  }

  /// Marks the connection for teardown; the reactor thread closes the
  /// fd and drops it from the poll set.
  void Deregister(const std::shared_ptr<SocketConnection>& conn) {
    {
      std::lock_guard<std::mutex> guard(mu_);
      pending_stop_.push_back(conn);
    }
    Wake();
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (!running_) return;
      stop_ = true;
    }
    Wake();
    if (thread_.joinable()) thread_.join();
    {
      std::lock_guard<std::mutex> guard(mu_);
      running_ = false;
      stop_ = false;
    }
  }

  void Wake() {
    std::lock_guard<std::mutex> guard(pipe_mu_);
    if (wake_pipe_[1] >= 0) {
      const char b = 1;
      [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &b, 1);
    }
  }

 private:
  void Loop();
  void HandleStops();
  void StartConnect(SocketConnection* c);
  void FinishConnect(SocketConnection* c);
  void ReadReady(const std::shared_ptr<SocketConnection>& c);
  void WriteReady(SocketConnection* c);
  void Disconnect(SocketConnection* c);

  std::mutex mu_;
  std::vector<std::shared_ptr<SocketConnection>> conns_;
  std::vector<std::shared_ptr<SocketConnection>> pending_stop_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
  std::mutex pipe_mu_;
  int wake_pipe_[2] = {-1, -1};
};

bool SocketConnection::Send(const std::string& frame) {
  bool need_wake = false;
  {
    std::lock_guard<std::mutex> guard(send_mu_);
    if (state_ != State::kConnected || fd_ < 0) return false;
    out_.append(frame);
    // Drain greedily so the common (uncongested) case never waits for
    // the reactor's POLLOUT round.
    while (out_pos_ < out_.size()) {
      const ssize_t n = write(fd_, out_.data() + out_pos_,
                              out_.size() - out_pos_);
      if (n > 0) {
        out_pos_ += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // Write error: the reactor notices via POLLERR/read EOF and
      // redials. The unsent tail is dropped with the connection.
      break;
    }
    if (out_pos_ >= out_.size()) {
      out_.clear();
      out_pos_ = 0;
    } else {
      need_wake = !want_write_;  // reactor must add POLLOUT for this fd
      want_write_ = true;
    }
  }
  // The reactor may be mid-poll without POLLOUT armed; kick it out so
  // the buffered tail doesn't wait out the poll timeout (the client-side
  // mirror of ServerImpl::Reply's Wake).
  if (need_wake) {
    if (auto reactor = reactor_.lock()) reactor->Wake();
  }
  return true;  // accepted (possibly buffered for the reactor to finish)
}

void SocketConnection::MarkConnectedLocked() {
  state_ = State::kConnected;
  backoff_ms_ = backoff_min_ms_;
  reader_ = FrameReader();
  out_.clear();
  out_pos_ = 0;
  want_write_ = false;
  epoch_.fetch_add(1);
  connected_.store(true);
  std::lock_guard<std::mutex> guard(wait_mu_);
  wait_cv_.notify_all();
}

void SocketConnection::CloseLocked() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  state_ = State::kDisconnected;
  connected_.store(false);
  out_.clear();
  out_pos_ = 0;
  want_write_ = false;
  reader_ = FrameReader();
}

void SocketReactor::Loop() {
  {
    std::lock_guard<std::mutex> guard(pipe_mu_);
    if (pipe(wake_pipe_) != 0) {
      wake_pipe_[0] = wake_pipe_[1] = -1;
    } else {
      SetNonBlocking(wake_pipe_[0]);
      SetNonBlocking(wake_pipe_[1]);
    }
  }
  for (;;) {
    HandleStops();
    std::vector<std::shared_ptr<SocketConnection>> snapshot;
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (stop_) break;
      snapshot = conns_;
    }
    // Dial whatever is due.
    const auto now = Clock::now();
    for (auto& c : snapshot) {
      if (c->stopped_) continue;
      std::unique_lock<std::mutex> lock(c->send_mu_);
      if (c->state_ == SocketConnection::State::kDisconnected &&
          now >= c->next_attempt_) {
        lock.unlock();
        StartConnect(c.get());
      }
    }
    // Build the poll set.
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<SocketConnection>> owners;
    {
      std::lock_guard<std::mutex> guard(pipe_mu_);
      if (wake_pipe_[0] >= 0) {
        fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
        owners.push_back(nullptr);
      }
    }
    for (auto& c : snapshot) {
      if (c->stopped_) continue;
      std::lock_guard<std::mutex> guard(c->send_mu_);
      if (c->fd_ < 0) continue;
      short events = 0;
      if (c->state_ == SocketConnection::State::kConnecting) {
        events = POLLOUT;
      } else if (c->state_ == SocketConnection::State::kConnected) {
        events = POLLIN;
        if (c->want_write_) events |= POLLOUT;
      }
      if (events == 0) continue;
      fds.push_back(pollfd{c->fd_, events, 0});
      owners.push_back(c);
    }
    poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (!owners[i]) {  // wake pipe
        char buf[64];
        while (read(fds[i].fd, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      SocketConnection* c = owners[i].get();
      if (c->stopped_) continue;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        if (c->state_ == SocketConnection::State::kConnecting) {
          FinishConnect(c);  // harvests the error, arms the redial
        } else {
          Disconnect(c);
        }
        continue;
      }
      if (fds[i].revents & POLLOUT) {
        if (c->state_ == SocketConnection::State::kConnecting) {
          FinishConnect(c);
        } else {
          WriteReady(c);
        }
      }
      if (fds[i].revents & POLLIN) ReadReady(owners[i]);
    }
  }
  // Shutdown: close everything on this thread.
  std::vector<std::shared_ptr<SocketConnection>> all;
  {
    std::lock_guard<std::mutex> guard(mu_);
    all = conns_;
    conns_.clear();
    all.insert(all.end(), pending_stop_.begin(), pending_stop_.end());
    pending_stop_.clear();
  }
  for (auto& c : all) {
    std::lock_guard<std::mutex> guard(c->send_mu_);
    c->stopped_ = true;
    c->CloseLocked();
  }
  std::lock_guard<std::mutex> guard(pipe_mu_);
  for (int& fd : wake_pipe_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
}

void SocketReactor::HandleStops() {
  std::vector<std::shared_ptr<SocketConnection>> stops;
  {
    std::lock_guard<std::mutex> guard(mu_);
    stops.swap(pending_stop_);
    if (!stops.empty()) {
      conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                  [&](const auto& c) {
                                    return std::find(stops.begin(),
                                                     stops.end(),
                                                     c) != stops.end();
                                  }),
                   conns_.end());
    }
  }
  for (auto& c : stops) {
    std::lock_guard<std::mutex> guard(c->send_mu_);
    c->stopped_ = true;
    c->CloseLocked();
  }
}

void SocketReactor::StartConnect(SocketConnection* c) {
  sockaddr_in addr;
  const SocketEndpoint& target = c->endpoints_[c->active_];
  if (!ResolveV4(target.host, target.port, &addr)) {
    std::lock_guard<std::mutex> guard(c->send_mu_);
    if (c->endpoints_.size() > 1) {
      c->ArmRedialLocked();  // a bad alternate just rotates past
    } else {
      c->next_attempt_ = Clock::now() + std::chrono::hours(24);  // hopeless
    }
    return;
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || !SetNonBlocking(fd)) {
    if (fd >= 0) close(fd);
    Disconnect(c);
    return;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int rc =
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  std::lock_guard<std::mutex> guard(c->send_mu_);
  if (c->stopped_) {
    close(fd);
    return;
  }
  c->fd_ = fd;
  if (rc == 0) {
    c->MarkConnectedLocked();
  } else if (errno == EINPROGRESS) {
    c->state_ = SocketConnection::State::kConnecting;
  } else {
    c->CloseLocked();
    c->ArmRedialLocked();
  }
}

void SocketReactor::FinishConnect(SocketConnection* c) {
  std::lock_guard<std::mutex> guard(c->send_mu_);
  if (c->fd_ < 0) return;
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(c->fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    c->CloseLocked();
    c->ArmRedialLocked();
    return;
  }
  c->MarkConnectedLocked();
}

void SocketReactor::Disconnect(SocketConnection* c) {
  std::lock_guard<std::mutex> guard(c->send_mu_);
  c->CloseLocked();
  c->ArmRedialLocked();
}

void SocketReactor::ReadReady(const std::shared_ptr<SocketConnection>& c) {
  // Frames are decoded and dispatched OUTSIDE the send lock: handlers
  // take TC locks and may trigger sends from other threads.
  char buf[64 * 1024];
  bool drop = false;
  for (;;) {
    ssize_t n;
    {
      std::lock_guard<std::mutex> guard(c->send_mu_);
      if (c->fd_ < 0 || c->state_ != SocketConnection::State::kConnected) {
        return;
      }
      n = read(c->fd_, buf, sizeof(buf));
    }
    if (n > 0) {
      c->reader_.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    drop = true;  // EOF or hard error
    break;
  }
  // Dispatch every complete frame already buffered — including ones the
  // final read before an EOF/error delivered (e.g. replies the server
  // flushed just before closing) — THEN act on the drop. Discarding them
  // would turn a clean close into needless resend retries.
  uint8_t kind = 0;
  std::string body;
  for (;;) {
    const FrameDecode d = c->reader_.Next(&kind, &body);
    if (d == FrameDecode::kOk) {
      c->DispatchFrame(kind, body);
      continue;
    }
    if (d == FrameDecode::kCorrupt) drop = true;  // poisoned stream
    break;
  }
  if (drop) Disconnect(c.get());
}

void SocketReactor::WriteReady(SocketConnection* c) {
  std::lock_guard<std::mutex> guard(c->send_mu_);
  if (c->fd_ < 0 || c->state_ != SocketConnection::State::kConnected) return;
  while (c->out_pos_ < c->out_.size()) {
    const ssize_t n = write(c->fd_, c->out_.data() + c->out_pos_,
                            c->out_.size() - c->out_pos_);
    if (n > 0) {
      c->out_pos_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    return;  // error surfaces via POLLERR / read EOF
  }
  c->out_.clear();
  c->out_pos_ = 0;
  c->want_write_ = false;
}

}  // namespace internal

// ---- SocketDcClient ----------------------------------------------------------

SocketDcClient::SocketDcClient(
    std::shared_ptr<internal::SocketConnection> conn,
    const CoalesceOptions& coalesce)
    : conn_(std::move(conn)),
      coalescer_(coalesce,
                 [this](const std::vector<OperationRequest>& batch) {
                   SendOperationBatch(batch);
                 }) {
  conn_->set_frame_handler([this](uint8_t kind, const std::string& body) {
    OnFrame(kind, body);
  });
}

SocketDcClient::~SocketDcClient() { Stop(); }

void SocketDcClient::Start() { coalescer_.Start(); }
void SocketDcClient::Stop() { coalescer_.Stop(); }

void SocketDcClient::SendFrame(uint8_t kind, const std::string& body) {
  request_messages_.fetch_add(1);
  if (!conn_->Send(EncodeFrame(kind, body))) {
    dropped_sends_.fetch_add(1);
  }
}

void SocketDcClient::SendOperation(const OperationRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  op_messages_.fetch_add(1);
  ops_carried_.fetch_add(1);
  SendFrame(static_cast<uint8_t>(MessageKind::kOperationRequest), body);
}

void SocketDcClient::SendOperationBatch(
    const std::vector<OperationRequest>& reqs) {
  if (reqs.empty()) return;
  OperationBatch batch;
  batch.ops = reqs;
  std::string body;
  batch.EncodeTo(&body);
  op_messages_.fetch_add(1);
  ops_carried_.fetch_add(reqs.size());
  uint64_t promotes = 0;
  for (const auto& req : reqs) {
    if (req.op == OpType::kPromoteVersion) ++promotes;
  }
  if (promotes > 0) {
    promote_messages_.fetch_add(1);
    promote_ops_carried_.fetch_add(promotes);
  }
  SendFrame(static_cast<uint8_t>(MessageKind::kOperationBatch), body);
}

void SocketDcClient::SendControl(const ControlRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  SendFrame(static_cast<uint8_t>(MessageKind::kControlRequest), body);
}

void SocketDcClient::SendScanStream(const ScanStreamRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  scan_messages_.fetch_add(1);
  SendFrame(static_cast<uint8_t>(MessageKind::kScanStreamRequest), body);
}

void SocketDcClient::SendScanCredit(const ScanCreditRequest& req) {
  std::string body;
  req.EncodeTo(&body);
  scan_credit_messages_.fetch_add(1);
  SendFrame(static_cast<uint8_t>(MessageKind::kScanCredit), body);
}

void SocketDcClient::QueueOperation(const OperationRequest& req) {
  coalescer_.Queue(req);
}

void SocketDcClient::FlushOperations() { coalescer_.Flush(); }

void SocketDcClient::OnFrame(uint8_t raw_kind, const std::string& body) {
  Slice input(body);
  switch (static_cast<MessageKind>(raw_kind)) {
    case MessageKind::kOperationReply: {
      OperationReply reply;
      if (OperationReply::DecodeFrom(&input, &reply) && op_handler_) {
        op_handler_(reply);
      }
      break;
    }
    case MessageKind::kOperationBatchReply: {
      OperationBatchReply batch;
      if (OperationBatchReply::DecodeFrom(&input, &batch) && op_handler_) {
        for (const auto& reply : batch.replies) op_handler_(reply);
      }
      break;
    }
    case MessageKind::kScanStreamChunk: {
      ScanStreamChunk chunk;
      if (ScanStreamChunk::DecodeFrom(&input, &chunk)) {
        scan_chunks_.fetch_add(1);
        scan_rows_carried_.fetch_add(chunk.keys.size());
        if (scan_chunk_handler_) scan_chunk_handler_(chunk);
      }
      break;
    }
    case MessageKind::kControlReply: {
      ControlReply reply;
      if (ControlReply::DecodeFrom(&input, &reply) && control_handler_) {
        control_handler_(reply);
      }
      break;
    }
    default:
      break;  // requests never arrive on the client side
  }
}

void SocketDcClient::AddWireStats(WireTotals* totals) const {
  totals->request_messages += request_messages_.load();
  totals->op_messages += op_messages_.load();
  totals->ops_carried += ops_carried_.load();
  totals->scan_messages += scan_messages_.load();
  totals->scan_rows_carried += scan_rows_carried_.load();
  totals->scan_credit_messages += scan_credit_messages_.load();
  totals->promote_messages += promote_messages_.load();
  totals->promote_ops_carried += promote_ops_carried_.load();
}

// ---- SocketBoundTransport ----------------------------------------------------

SocketBoundTransport::SocketBoundTransport(
    std::shared_ptr<internal::SocketReactor> reactor,
    std::shared_ptr<internal::SocketConnection> conn,
    const SocketTransportOptions& options)
    : reactor_(std::move(reactor)),
      conn_(std::move(conn)),
      client_(conn_, options.coalesce),
      connect_timeout_ms_(options.connect_timeout_ms) {}

SocketBoundTransport::~SocketBoundTransport() { Stop(); }

DcClient* SocketBoundTransport::client() { return &client_; }

void SocketBoundTransport::AddWireStats(WireTotals* totals) const {
  client_.AddWireStats(totals);
}

void SocketBoundTransport::Start() {
  client_.Start();
  reactor_->Register(conn_);
  // Give the first dial a beat so the TC's initial announcements are
  // not pointlessly dropped; a down DC just hands over to the redialer.
  conn_->WaitConnected(connect_timeout_ms_);
}

void SocketBoundTransport::Stop() {
  client_.Stop();
  reactor_->Deregister(conn_);
  // Deregister only QUEUES the teardown; the reactor thread may still be
  // mid-ReadReady dispatching into client_. Clearing the handler is the
  // synchronous barrier (it blocks on handler_mu_ until any in-flight
  // dispatch returns), after which destroying client_ is safe.
  conn_->set_frame_handler(nullptr);
}

bool SocketBoundTransport::connected() const { return conn_->connected(); }

uint64_t SocketBoundTransport::connect_epoch() const {
  return conn_->connect_epoch();
}

bool SocketBoundTransport::WaitConnected(uint32_t timeout_ms) const {
  return conn_->WaitConnected(timeout_ms);
}

// ---- SocketTransportFactory --------------------------------------------------

SocketTransportFactory::SocketTransportFactory(
    std::map<DcId, std::vector<SocketEndpoint>> targets,
    SocketTransportOptions options)
    : targets_(std::move(targets)),
      options_(options),
      reactor_(std::make_shared<internal::SocketReactor>()) {}

SocketTransportFactory::~SocketTransportFactory() { reactor_->Stop(); }

std::unique_ptr<BoundTransport> SocketTransportFactory::Bind(
    TcId /*tc*/, DcId dc, DataComponent* /*target*/) {
  auto it = targets_.find(dc);
  std::vector<SocketEndpoint> endpoints =
      it == targets_.end() ? std::vector<SocketEndpoint>{} : it->second;
  auto conn = std::make_shared<internal::SocketConnection>(
      std::move(endpoints), options_,
      std::weak_ptr<internal::SocketReactor>(reactor_));
  return std::make_unique<SocketBoundTransport>(reactor_, conn, options_);
}

std::shared_ptr<TransportFactory> MakeSocketTransportFactory(
    std::map<DcId, SocketEndpoint> targets, SocketTransportOptions options) {
  std::map<DcId, std::vector<SocketEndpoint>> multi;
  for (auto& [dc, endpoint] : targets) multi[dc] = {endpoint};
  return std::make_shared<SocketTransportFactory>(std::move(multi), options);
}

std::shared_ptr<TransportFactory> MakeSocketTransportFactory(
    std::map<DcId, std::vector<SocketEndpoint>> targets,
    SocketTransportOptions options) {
  return std::make_shared<SocketTransportFactory>(std::move(targets),
                                                  options);
}

}  // namespace untx
