#include "net/socket_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "dc/dc_api.h"
#include "net/frame.h"

namespace untx {
namespace internal {

namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

/// One accepted TC connection. The reactor thread owns fd lifecycle and
/// reads; workers write replies through SendFrame. `wmu` guards the fd,
/// the out buffer and the tc set, so a worker's write and the reactor's
/// close can never race on the descriptor.
struct Session {
  std::mutex wmu;
  int fd = -1;
  bool alive = false;
  bool want_write = false;
  std::string out;
  size_t out_pos = 0;
  /// TC ids seen in this session's decoded requests — the eviction set
  /// when the session drops.
  std::set<TcId> tcs;
  FrameReader reader;  // reactor-thread only

  // -- Replica subscription state (guarded by wmu) ------------------------
  /// True once a kReplicaSubscribe frame arrived: this session is a
  /// standby DC draining the redo log, not a TC.
  bool is_replica = false;
  uint32_t replica_id = 0;
  /// Stop-and-wait shipping window: `ship_next` is the first unshipped
  /// rlsn; a batch is in flight while acked + 1 < ship_next. Every ack
  /// rewinds/advances ship_next to acked + 1 — correct because at most
  /// one batch is ever outstanding.
  uint64_t acked = 0;
  uint64_t ship_next = 0;
  std::condition_variable ship_cv;
  /// Per-session shipping thread; joined by CloseSession / StopAll.
  std::thread shipper;

  /// Appends a frame and drains greedily; leftover bytes wait for
  /// POLLOUT. Returns bytes still buffered after the attempt (0 = all
  /// on the wire), or 0 with *ok=false if the session is gone.
  size_t SendFrame(uint8_t kind, const Slice& body, bool* ok) {
    std::lock_guard<std::mutex> guard(wmu);
    if (!alive || fd < 0) {
      *ok = false;
      return 0;
    }
    *ok = true;
    AppendFrame(kind, body, &out);
    while (out_pos < out.size()) {
      ssize_t n = ::send(fd, out.data() + out_pos, out.size() - out_pos,
                         MSG_NOSIGNAL);
      if (n > 0) {
        out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        want_write = true;
      }
      // A hard error leaves the bytes buffered; the reactor sees the
      // POLLERR/POLLHUP and closes the session.
      break;
    }
    if (out_pos >= out.size()) {
      out.clear();
      out_pos = 0;
      return 0;
    }
    return out.size() - out_pos;
  }
};

struct ServerImpl {
  /// Atomic: workers and shippers read it per frame; Retarget (failover)
  /// swaps it while they run.
  std::atomic<DataComponent*> dc{nullptr};
  SocketServerOptions options;

  int listen_fd = -1;
  uint16_t port = 0;
  int wake_fds[2] = {-1, -1};
  std::atomic<bool> stop{false};
  std::thread reactor;
  std::unique_ptr<ThreadPool> pool;

  std::mutex sessions_mu;
  std::vector<std::shared_ptr<Session>> sessions;

  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> corrupt{0};
  std::atomic<uint64_t> max_queued_reply_bytes{0};

  ~ServerImpl() { StopAll(); }

  Status StartAll() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) return Status::IOError("socket: " + std::string(strerror(errno)));
    int one = 1;
    setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd);
      listen_fd = -1;
      return Status::InvalidArgument("bad listen host: " + options.host);
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status s = Status::IOError("bind: " + std::string(strerror(errno)));
      ::close(listen_fd);
      listen_fd = -1;
      return s;
    }
    if (::listen(listen_fd, 64) != 0) {
      Status s = Status::IOError("listen: " + std::string(strerror(errno)));
      ::close(listen_fd);
      listen_fd = -1;
      return s;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    port = ntohs(bound.sin_port);
    SetNonBlocking(listen_fd);
    if (pipe(wake_fds) != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      return Status::IOError("pipe: " + std::string(strerror(errno)));
    }
    SetNonBlocking(wake_fds[0]);
    SetNonBlocking(wake_fds[1]);
    pool = std::make_unique<ThreadPool>(std::max(1, options.workers));
    stop.store(false);
    reactor = std::thread([this] { Loop(); });
    return Status::OK();
  }

  void StopAll() {
    if (!reactor.joinable() && listen_fd < 0) return;
    stop.store(true);
    Wake();
    if (reactor.joinable()) reactor.join();
    // Workers may still hold sessions; stop them before closing fds so
    // no SendFrame runs against a closed descriptor. (SendFrame also
    // checks `alive` under wmu, so either order is safe — this one just
    // drains the backlog.)
    if (pool) pool->Shutdown();
    std::vector<std::shared_ptr<Session>> doomed;
    {
      std::lock_guard<std::mutex> guard(sessions_mu);
      doomed.swap(sessions);
    }
    for (auto& s : doomed) {
      std::thread shipper;
      {
        std::lock_guard<std::mutex> guard(s->wmu);
        if (s->fd >= 0) ::close(s->fd);
        s->fd = -1;
        s->alive = false;
        shipper = std::move(s->shipper);
        s->ship_cv.notify_all();
      }
      // Outside wmu: the shipper locks it on its way out.
      if (shipper.joinable()) shipper.join();
    }
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
    for (int i = 0; i < 2; ++i) {
      if (wake_fds[i] >= 0) ::close(wake_fds[i]);
      wake_fds[i] = -1;
    }
  }

  void Wake() {
    if (wake_fds[1] >= 0) {
      char b = 1;
      ssize_t ignored = ::write(wake_fds[1], &b, 1);
      (void)ignored;
    }
  }

  void Loop() {
    std::vector<pollfd> pfds;
    std::vector<std::shared_ptr<Session>> polled;
    while (!stop.load()) {
      pfds.clear();
      polled.clear();
      pfds.push_back({wake_fds[0], POLLIN, 0});
      pfds.push_back({listen_fd, POLLIN, 0});
      {
        std::lock_guard<std::mutex> guard(sessions_mu);
        for (auto& s : sessions) {
          short events = POLLIN;
          {
            std::lock_guard<std::mutex> wguard(s->wmu);
            if (s->want_write) events |= POLLOUT;
          }
          pfds.push_back({s->fd, events, 0});
          polled.push_back(s);
        }
      }
      int rc = ::poll(pfds.data(), pfds.size(), 50);
      if (stop.load()) break;
      if (rc <= 0) continue;
      if (pfds[0].revents & POLLIN) {
        char buf[64];
        while (::read(wake_fds[0], buf, sizeof(buf)) > 0) {
        }
      }
      if (pfds[1].revents & POLLIN) Accept();
      for (size_t i = 2; i < pfds.size(); ++i) {
        auto& s = polled[i - 2];
        short rev = pfds[i].revents;
        if (rev & (POLLERR | POLLHUP | POLLNVAL)) {
          CloseSession(s);
          continue;
        }
        if (rev & POLLOUT) {
          if (!FlushSession(s)) {
            CloseSession(s);
            continue;
          }
        }
        if (rev & POLLIN) {
          if (!ReadSession(s)) CloseSession(s);
        }
      }
    }
  }

  void Accept() {
    while (true) {
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;
      SetNonBlocking(fd);
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto session = std::make_shared<Session>();
      session->fd = fd;
      session->alive = true;
      {
        std::lock_guard<std::mutex> guard(sessions_mu);
        sessions.push_back(session);
      }
      accepted.fetch_add(1);
    }
  }

  /// Drains the pending out buffer on POLLOUT. False on a hard error.
  bool FlushSession(const std::shared_ptr<Session>& s) {
    std::lock_guard<std::mutex> guard(s->wmu);
    if (!s->alive || s->fd < 0) return false;
    while (s->out_pos < s->out.size()) {
      ssize_t n = ::send(s->fd, s->out.data() + s->out_pos,
                         s->out.size() - s->out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        s->out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;
    }
    s->out.clear();
    s->out_pos = 0;
    s->want_write = false;
    return true;
  }

  /// Reads and dispatches frames. False on EOF, error, or a corrupt
  /// stream (framing is checksummed; a bad frame means the byte stream
  /// is unusable — kill the session and let the TC redial).
  bool ReadSession(const std::shared_ptr<Session>& s) {
    char buf[64 * 1024];
    while (true) {
      ssize_t n = ::recv(s->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        s->reader.Feed(buf, static_cast<size_t>(n));
        uint8_t kind = 0;
        std::string body;
        while (s->reader.Next(&kind, &body) == FrameDecode::kOk) {
          Dispatch(s, kind, std::move(body));
        }
        if (s->reader.corrupt()) {
          corrupt.fetch_add(1);
          return false;
        }
        if (n == static_cast<ssize_t>(sizeof(buf))) continue;
        return true;
      }
      if (n == 0) return false;  // EOF: peer closed
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  /// Hands one decoded frame to the worker pool. The session pointer is
  /// shared so a close never invalidates a queued task; SendFrame checks
  /// liveness before touching the fd.
  void Dispatch(const std::shared_ptr<Session>& s, uint8_t kind,
                std::string body) {
    auto task = [this, s, kind, body = std::move(body)]() {
      HandleFrame(s, static_cast<MessageKind>(kind), body);
    };
    if (!pool->Submit(std::move(task))) {
      // Shutting down; drop — the TC resends.
    }
  }

  void NoteTc(const std::shared_ptr<Session>& s, TcId tc) {
    std::lock_guard<std::mutex> guard(s->wmu);
    s->tcs.insert(tc);
  }

  void Reply(const std::shared_ptr<Session>& s, MessageKind kind,
             const std::string& body) {
    bool ok = false;
    size_t queued = s->SendFrame(static_cast<uint8_t>(kind), Slice(body), &ok);
    if (!ok) return;
    if (queued > 0) {
      Wake();  // reactor must start polling POLLOUT for this session
      uint64_t seen = max_queued_reply_bytes.load();
      while (queued > seen &&
             !max_queued_reply_bytes.compare_exchange_weak(seen, queued)) {
      }
    }
  }

  /// The socket analog of ChannelTransport::ServerLoop — same decode,
  /// same crashed-reply suppression, but replies route to the arrival
  /// session instead of a per-binding reply channel.
  void HandleFrame(const std::shared_ptr<Session>& s, MessageKind kind,
                   const std::string& wire_body) {
    Slice body(wire_body);
    // One consistent backend per frame (Retarget may swap it between
    // frames during a failover).
    DataComponent* dc = this->dc.load();
    switch (kind) {
      case MessageKind::kOperationRequest: {
        OperationRequest req;
        if (!OperationRequest::DecodeFrom(&body, &req)) return;
        NoteTc(s, req.tc_id);
        OperationReply reply = dc->Perform(req);
        if (reply.status.IsCrashed()) return;
        std::string out;
        reply.EncodeTo(&out);
        Reply(s, MessageKind::kOperationReply, out);
        return;
      }
      case MessageKind::kOperationBatch: {
        OperationBatch batch;
        if (!OperationBatch::DecodeFrom(&body, &batch)) return;
        if (!batch.ops.empty()) NoteTc(s, batch.ops.front().tc_id);
        std::vector<OperationReply> replies = dc->PerformBatch(batch.ops);
        OperationBatchReply batch_reply;
        for (auto& reply : replies) {
          if (reply.status.IsCrashed()) continue;
          batch_reply.replies.push_back(std::move(reply));
        }
        if (batch_reply.replies.empty()) return;
        std::string out;
        batch_reply.EncodeTo(&out);
        Reply(s, MessageKind::kOperationBatchReply, out);
        return;
      }
      case MessageKind::kScanStreamRequest: {
        ScanStreamRequest req;
        if (!ScanStreamRequest::DecodeFrom(&body, &req)) return;
        NoteTc(s, req.base.tc_id);
        dc->PerformScanStream(req, [this, &s](const ScanStreamChunk& chunk) {
          EmitChunk(s, chunk);
        });
        return;
      }
      case MessageKind::kScanCredit: {
        ScanCreditRequest req;
        if (!ScanCreditRequest::DecodeFrom(&body, &req)) return;
        NoteTc(s, req.tc_id);
        dc->ScanCredit(req, [this, &s](const ScanStreamChunk& chunk) {
          EmitChunk(s, chunk);
        });
        return;
      }
      case MessageKind::kControlRequest: {
        ControlRequest req;
        if (!ControlRequest::DecodeFrom(&body, &req)) return;
        NoteTc(s, req.tc_id);
        ControlReply reply = dc->Control(req);
        if (reply.status.IsCrashed()) return;
        std::string out;
        reply.EncodeTo(&out);
        Reply(s, MessageKind::kControlReply, out);
        return;
      }
      case MessageKind::kReplicaSubscribe: {
        ReplicaSubscribeRequest req;
        if (!ReplicaSubscribeRequest::DecodeFrom(&body, &req)) return;
        if (dc->redo_log() == nullptr) return;  // no history to ship
        {
          std::lock_guard<std::mutex> guard(s->wmu);
          // One subscription per session; a dead session spawns nothing
          // (an unjoined thread in a destructing Session would terminate).
          if (!s->alive || s->is_replica) return;
          s->is_replica = true;
          s->replica_id = req.replica_id;
          s->acked = req.from_rlsn == 0 ? 0 : req.from_rlsn - 1;
          s->ship_next = s->acked + 1;
        }
        dc->redo_log()->set_replication_enabled(true);
        dc->redo_log()->RecordReplicaAck(req.replica_id,
                                         req.from_rlsn == 0
                                             ? 0
                                             : req.from_rlsn - 1);
        {
          std::lock_guard<std::mutex> guard(s->wmu);
          if (!s->alive) return;
          s->shipper = std::thread([this, s] { ShipLoop(s); });
        }
        return;
      }
      case MessageKind::kReplicaAck: {
        ReplicaAckMessage msg;
        if (!ReplicaAckMessage::DecodeFrom(&body, &msg)) return;
        uint32_t replica_id = 0;
        {
          std::lock_guard<std::mutex> guard(s->wmu);
          if (!s->is_replica) return;
          replica_id = s->replica_id;
          s->acked = msg.acked_rlsn;
          // Stop-and-wait: at most one batch is in flight, so the
          // replica's latest ack is always the right resume point — a
          // rejected batch rewinds, an applied one advances.
          s->ship_next = msg.acked_rlsn + 1;
          s->ship_cv.notify_all();
        }
        if (dc->redo_log() != nullptr) {
          dc->redo_log()->RecordReplicaAck(replica_id, msg.acked_rlsn);
        }
        return;
      }
      default:
        // Reply kinds arriving at the server: a confused peer. Ignore.
        return;
    }
  }

  /// Per-replica-session shipping loop: drain the primary's durable redo
  /// suffix toward the subscribed standby, one batch in flight at a time
  /// (the ack handler opens the window). Exits when the session dies or
  /// the server stops.
  void ShipLoop(const std::shared_ptr<Session>& s) {
    while (true) {
      uint64_t from = 0;
      {
        std::unique_lock<std::mutex> lk(s->wmu);
        s->ship_cv.wait_for(lk, std::chrono::milliseconds(50), [&] {
          return !s->alive || stop.load() || s->acked + 1 >= s->ship_next;
        });
        if (!s->alive || stop.load()) return;
        if (s->acked + 1 < s->ship_next) continue;  // batch still in flight
        from = s->ship_next;
      }
      DcRedoLog* log = dc.load()->redo_log();
      if (log == nullptr) return;
      ReplicaEntriesMessage msg;
      // Only durable entries ship: a standby must never apply an op the
      // primary could forget in a crash.
      uint64_t first = log->ReadFrom(from, 256, &msg.entries);
      if (first == 0 || msg.entries.empty()) {
        log->WaitDurable(from - 1, 50);
        continue;
      }
      msg.from_rlsn = first;
      msg.primary_end = log->end();
      std::string out;
      msg.EncodeTo(&out);
      {
        std::lock_guard<std::mutex> lk(s->wmu);
        if (!s->alive) return;
        s->ship_next = first + msg.entries.size();
      }
      Reply(s, MessageKind::kReplicaEntries, out);
    }
  }

  void EmitChunk(const std::shared_ptr<Session>& s,
                 const ScanStreamChunk& chunk) {
    if (chunk.status.IsCrashed()) return;
    std::string out;
    chunk.EncodeTo(&out);
    Reply(s, MessageKind::kScanStreamChunk, out);
  }

  /// Reactor-side teardown of one session: close the fd, drop it from
  /// the poll set, and evict DC scan cursors for every TC this session
  /// served that no OTHER live session still serves (a TC may hold
  /// bindings through more than one connection only transiently, during
  /// a reconnect race — the check keeps that case safe).
  void CloseSession(const std::shared_ptr<Session>& s) {
    std::set<TcId> served;
    std::thread shipper;
    bool was_replica = false;
    uint32_t replica_id = 0;
    {
      std::lock_guard<std::mutex> guard(s->wmu);
      if (!s->alive) return;
      s->alive = false;
      if (s->fd >= 0) ::close(s->fd);
      s->fd = -1;
      served = s->tcs;
      was_replica = s->is_replica;
      replica_id = s->replica_id;
      shipper = std::move(s->shipper);
      s->ship_cv.notify_all();
    }
    // Outside wmu: the shipper locks it on its way out. Its waits are
    // bounded (50ms cv / WaitDurable timeouts), so this join is too.
    if (shipper.joinable()) shipper.join();
    {
      std::lock_guard<std::mutex> guard(sessions_mu);
      sessions.erase(std::remove(sessions.begin(), sessions.end(), s),
                     sessions.end());
      for (auto& other : sessions) {
        std::lock_guard<std::mutex> wguard(other->wmu);
        for (TcId tc : other->tcs) served.erase(tc);
      }
    }
    DataComponent* d = dc.load();
    for (TcId tc : served) d->OnTcDisconnect(tc);
    // A dropped standby stops holding back the TCs' checkpoint clamp; it
    // re-registers (with its true position) when it re-subscribes.
    if (was_replica && d->redo_log() != nullptr) {
      d->redo_log()->ForgetReplica(replica_id);
    }
  }
};

}  // namespace internal

SocketServer::SocketServer(DataComponent* dc, SocketServerOptions options)
    : impl_(std::make_unique<internal::ServerImpl>()) {
  impl_->dc = dc;
  impl_->options = std::move(options);
}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() { return impl_->StartAll(); }

void SocketServer::Stop() { impl_->StopAll(); }

void SocketServer::Retarget(DataComponent* dc) { impl_->dc.store(dc); }

uint16_t SocketServer::port() const { return impl_->port; }

size_t SocketServer::session_count() const {
  std::lock_guard<std::mutex> guard(impl_->sessions_mu);
  return impl_->sessions.size();
}

size_t SocketServer::replica_session_count() const {
  std::lock_guard<std::mutex> guard(impl_->sessions_mu);
  size_t n = 0;
  for (const auto& s : impl_->sessions) {
    std::lock_guard<std::mutex> wguard(s->wmu);
    if (s->is_replica) ++n;
  }
  return n;
}

uint64_t SocketServer::sessions_accepted() const {
  return impl_->accepted.load();
}

uint64_t SocketServer::corrupt_frames() const { return impl_->corrupt.load(); }

uint64_t SocketServer::max_queued_reply_bytes() const {
  return impl_->max_queued_reply_bytes.load();
}

}  // namespace untx
