#include "net/sim_channel.h"

namespace untx {

SimChannel::SimChannel(ChannelOptions options)
    : options_(options), rng_(options.seed) {}

void SimChannel::Enqueue(std::string msg) {
  uint32_t delay_us = options_.min_delay_us;
  if (options_.max_delay_us > options_.min_delay_us) {
    delay_us = static_cast<uint32_t>(
        rng_.Range(options_.min_delay_us, options_.max_delay_us));
  }
  queue_.push(InFlightMsg{Clock::now() + std::chrono::microseconds(delay_us),
                          next_seq_++, std::move(msg)});
}

void SimChannel::Send(std::string msg) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (closed_) return;
    ++sent_;
    if (options_.drop_prob > 0 && rng_.Bernoulli(options_.drop_prob)) {
      ++dropped_;
      return;
    }
    const bool dup =
        options_.dup_prob > 0 && rng_.Bernoulli(options_.dup_prob);
    if (dup) {
      ++duplicated_;
      Enqueue(msg);
    }
    Enqueue(std::move(msg));
  }
  cv_.notify_all();
}

bool SimChannel::Receive(std::string* out, uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (!queue_.empty()) {
      const auto now = Clock::now();
      const auto& top = queue_.top();
      if (top.deliver_at <= now) {
        *out = top.payload;
        queue_.pop();
        ++delivered_;
        return true;
      }
      // Wait until the earliest message matures (or new ones arrive).
      const auto wake = top.deliver_at < deadline ? top.deliver_at : deadline;
      if (cv_.wait_until(lock, wake) == std::cv_status::timeout &&
          wake == deadline && Clock::now() >= deadline) {
        // Deadline passed; one more immediate check below.
      }
    } else {
      if (closed_) return false;
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        // fall through to the deadline check
      }
    }
    if (Clock::now() >= deadline) {
      // Final non-blocking attempt.
      if (!queue_.empty() && queue_.top().deliver_at <= Clock::now()) {
        *out = queue_.top().payload;
        queue_.pop();
        ++delivered_;
        return true;
      }
      return false;
    }
  }
}

bool SimChannel::TryReceive(std::string* out) {
  std::lock_guard<std::mutex> guard(mu_);
  if (queue_.empty() || queue_.top().deliver_at > Clock::now()) {
    return false;
  }
  *out = queue_.top().payload;
  queue_.pop();
  ++delivered_;
  return true;
}

void SimChannel::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  while (!queue_.empty()) queue_.pop();
}

void SimChannel::Close() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool SimChannel::closed() const {
  std::lock_guard<std::mutex> guard(mu_);
  return closed_;
}

uint64_t SimChannel::sent() const {
  std::lock_guard<std::mutex> guard(mu_);
  return sent_;
}
uint64_t SimChannel::delivered() const {
  std::lock_guard<std::mutex> guard(mu_);
  return delivered_;
}
uint64_t SimChannel::dropped() const {
  std::lock_guard<std::mutex> guard(mu_);
  return dropped_;
}
uint64_t SimChannel::duplicated() const {
  std::lock_guard<std::mutex> guard(mu_);
  return duplicated_;
}
size_t SimChannel::InFlight() const {
  std::lock_guard<std::mutex> guard(mu_);
  return queue_.size();
}

}  // namespace untx
