// SlottedPage: record-slot management over a raw page buffer.
//
// Slots are kept in logical (sorted) order by the caller; the heap holds
// variable-length payloads. Deleting leaves holes that are reclaimed by
// compaction when an insert needs contiguous space.
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace untx {

/// A non-owning view over one page buffer. All mutators assume the caller
/// holds the page's exclusive latch.
class SlottedPage {
 public:
  /// page_size and trailer_capacity must match the store's configuration.
  SlottedPage(char* buf, uint32_t page_size, uint32_t trailer_capacity)
      : buf_(buf), page_size_(page_size), trailer_capacity_(trailer_capacity) {}

  /// Formats a blank page.
  void Init(PageId page_id, PageType type, uint16_t level, TableId table_id);

  // -- Header accessors -----------------------------------------------------
  PageId page_id() const;
  PageType type() const;
  uint16_t slot_count() const;
  DLsn dlsn() const;
  void set_dlsn(DLsn dlsn);
  PageId next_page() const;
  void set_next_page(PageId pid);
  PageId prev_page() const;
  void set_prev_page(PageId pid);
  uint16_t level() const;
  TableId table_id() const;
  void set_table_id(TableId tid);
  uint8_t flags() const;
  void set_flags(uint8_t flags);

  // -- Sync trailer (abLSN serialization area, §5.1.2) ----------------------
  uint32_t trailer_capacity() const { return trailer_capacity_; }
  uint16_t trailer_len() const;
  /// Returns false if data does not fit in the reserved trailer.
  bool WriteTrailer(const Slice& data);
  Slice ReadTrailer() const;

  // -- Slot operations ------------------------------------------------------
  /// Payload bytes of slot i (0 <= i < slot_count).
  Slice PayloadAt(uint16_t i) const;

  /// Inserts payload as the new slot i, shifting later slots up.
  /// Returns kBusy ("page full") if the payload cannot fit even after
  /// compaction — the caller then runs a split.
  Status InsertAt(uint16_t i, const Slice& payload);

  /// Removes slot i, shifting later slots down.
  void RemoveAt(uint16_t i);

  /// Replaces slot i's payload (may compact; kBusy if it cannot fit).
  Status ReplaceAt(uint16_t i, const Slice& payload);

  /// Contiguous free bytes available for one new payload + slot entry.
  uint32_t ContiguousFree() const;
  /// Free bytes counting reclaimable holes.
  uint32_t TotalFree() const;
  /// True if a payload of n bytes fits (possibly after compaction).
  bool HasSpaceFor(uint32_t n) const;

  /// Fraction of the usable body that is occupied by live payloads.
  double FillFraction() const;

  /// Rewrites the heap to squeeze out holes.
  void Compact();

  /// Structural sanity check used by tests and recovery: slot bounds,
  /// free-space arithmetic, no overlapping payloads.
  Status Validate() const;

  char* raw() { return buf_; }
  const char* raw() const { return buf_; }
  uint32_t page_size() const { return page_size_; }

  /// First byte past the usable body (= page_size - trailer_capacity).
  uint32_t body_end() const { return page_size_ - trailer_capacity_; }

 private:
  uint16_t GetU16(uint32_t off) const;
  void SetU16(uint32_t off, uint16_t v);
  uint32_t GetU32(uint32_t off) const;
  void SetU32(uint32_t off, uint32_t v);
  uint64_t GetU64(uint32_t off) const;
  void SetU64(uint32_t off, uint64_t v);

  uint32_t SlotArrayEnd() const;
  void ReadSlot(uint16_t i, uint16_t* off, uint16_t* len) const;
  void WriteSlot(uint16_t i, uint16_t off, uint16_t len);

  char* buf_;
  uint32_t page_size_;
  uint32_t trailer_capacity_;
};

}  // namespace untx
