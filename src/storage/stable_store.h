// StableStore: the simulated durable page device beneath one DC.
//
// Substitution note (see DESIGN.md §2): the paper assumes conventional
// disks. We model a disk as an in-memory page map with write-through
// durability: a page write is durable once Write() returns. The volatile
// layer of the system is the DC's buffer pool, not the store, so a DC
// crash loses cached pages but never store contents — exactly the
// fail-stop model of §5.3. CRC32C over every page detects corruption, and
// fault-injection knobs let tests exercise I/O failures and torn writes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace untx {

struct StableStoreOptions {
  uint32_t page_size = kDefaultPageSize;
  uint32_t trailer_capacity = kDefaultTrailerCapacity;
  /// Probability that a Write fails with IOError (fault injection).
  double write_fail_prob = 0.0;
  uint64_t fault_seed = 42;
  /// Non-empty: back the store with this file so pages survive the
  /// PROCESS dying (untx_dcd --recover), not just the simulated DC
  /// crash. Page `pid` lives at byte offset (pid-1)*page_size; writes
  /// go through to the kernel immediately (pwrite), matching the
  /// write-through durability contract above. A slot whose CRC does not
  /// verify on load (never written, freed, or torn) is free space.
  std::string path;
};

/// Thread-safe simulated page store.
class StableStore {
 public:
  explicit StableStore(StableStoreOptions options = {});
  ~StableStore();

  uint32_t page_size() const { return options_.page_size; }
  uint32_t trailer_capacity() const { return options_.trailer_capacity; }

  /// Allocates a fresh (or recycled) page id. Durable immediately — the
  /// allocator models the device's block map.
  PageId Allocate();

  /// Returns a page to the free list. Idempotent.
  void Free(PageId pid);

  /// Durably writes page_size bytes; stamps the CRC into bytes [0,4).
  Status Write(PageId pid, const char* data);

  /// Reads page_size bytes into out; verifies CRC.
  Status Read(PageId pid, char* out) const;

  bool Exists(PageId pid) const;

  /// Corrupts a stored page (flips a byte) — for CRC-detection tests.
  void CorruptForTest(PageId pid, uint32_t byte_offset);

  /// Wipes the store back to empty (pages, allocator, backing file).
  /// Used when a replica rebuilds itself from a cancel-filtered replay
  /// of the primary's redo stream: its own page set may have diverged.
  void Reset();

  // Stats.
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t allocated_high_water() const;

  /// Number of live (written, non-free) pages.
  size_t LivePageCount() const;

 private:
  /// Loads every CRC-valid slot of the backing file. Constructor only.
  void LoadFile();
  /// Writes `data` (page_size bytes) at pid's slot. Caller holds mu_.
  void PersistPageLocked(PageId pid, const char* data);

  StableStoreOptions options_;
  int fd_ = -1;
  mutable std::mutex mu_;
  std::unordered_map<PageId, std::string> pages_;
  std::vector<PageId> free_list_;
  std::unordered_set<PageId> free_set_;
  PageId next_page_id_ = 1;
  mutable uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  mutable Random fault_rng_;
};

}  // namespace untx
