#include "storage/stable_store.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace untx {

StableStore::StableStore(StableStoreOptions options)
    : options_(options), fault_rng_(options.fault_seed) {}

PageId StableStore::Allocate() {
  std::lock_guard<std::mutex> guard(mu_);
  if (!free_list_.empty()) {
    PageId pid = free_list_.back();
    free_list_.pop_back();
    free_set_.erase(pid);
    return pid;
  }
  return next_page_id_++;
}

void StableStore::Free(PageId pid) {
  std::lock_guard<std::mutex> guard(mu_);
  if (pid == kInvalidPageId) return;
  if (free_set_.insert(pid).second) {
    free_list_.push_back(pid);
    pages_.erase(pid);
  }
}

Status StableStore::Write(PageId pid, const char* data) {
  std::lock_guard<std::mutex> guard(mu_);
  if (options_.write_fail_prob > 0 &&
      fault_rng_.Bernoulli(options_.write_fail_prob)) {
    return Status::IOError("injected write failure");
  }
  std::string copy(data, options_.page_size);
  const uint32_t crc = crc32c::Mask(
      crc32c::Value(copy.data() + 4, options_.page_size - 4));
  EncodeFixed32(copy.data(), crc);
  pages_[pid] = std::move(copy);
  // A freed page that gets rewritten (recycled id) is live again.
  if (free_set_.erase(pid) > 0) {
    for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
      if (*it == pid) {
        free_list_.erase(it);
        break;
      }
    }
  }
  ++writes_;
  return Status::OK();
}

Status StableStore::Read(PageId pid, char* out) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = pages_.find(pid);
  if (it == pages_.end()) {
    return Status::NotFound("page not in stable store");
  }
  const std::string& stored = it->second;
  const uint32_t expected = crc32c::Unmask(DecodeFixed32(stored.data()));
  const uint32_t actual =
      crc32c::Value(stored.data() + 4, options_.page_size - 4);
  if (expected != actual) {
    return Status::Corruption("page checksum mismatch");
  }
  memcpy(out, stored.data(), options_.page_size);
  ++reads_;
  return Status::OK();
}

bool StableStore::Exists(PageId pid) const {
  std::lock_guard<std::mutex> guard(mu_);
  return pages_.count(pid) > 0;
}

void StableStore::CorruptForTest(PageId pid, uint32_t byte_offset) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = pages_.find(pid);
  if (it == pages_.end()) return;
  if (byte_offset >= options_.page_size) byte_offset = options_.page_size - 1;
  it->second[byte_offset] ^= 0x5a;
}

uint64_t StableStore::allocated_high_water() const {
  std::lock_guard<std::mutex> guard(mu_);
  return next_page_id_ - 1;
}

size_t StableStore::LivePageCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  return pages_.size();
}

}  // namespace untx
