#include "storage/stable_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace untx {

StableStore::StableStore(StableStoreOptions options)
    : options_(options), fault_rng_(options.fault_seed) {
  if (!options_.path.empty()) {
    fd_ = ::open(options_.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ >= 0) LoadFile();
  }
}

StableStore::~StableStore() {
  if (fd_ >= 0) ::close(fd_);
}

void StableStore::LoadFile() {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return;
  const uint32_t ps = options_.page_size;
  const PageId max_pid = static_cast<PageId>(st.st_size / ps);
  std::string buf(ps, '\0');
  PageId max_live = 0;
  for (PageId pid = 1; pid <= max_pid; ++pid) {
    const off_t off = static_cast<off_t>(pid - 1) * ps;
    if (::pread(fd_, buf.data(), ps, off) != static_cast<ssize_t>(ps)) break;
    const uint32_t expected = crc32c::Unmask(DecodeFixed32(buf.data()));
    const uint32_t actual = crc32c::Value(buf.data() + 4, ps - 4);
    if (expected != actual) continue;  // never written, freed, or torn
    pages_[pid] = buf;
    max_live = pid;
  }
  next_page_id_ = max_live + 1;
  // Invalid slots below the high water are free space the allocator may
  // recycle (a freed page's slot was zeroed, so its CRC cannot verify).
  for (PageId pid = 1; pid < next_page_id_; ++pid) {
    if (pages_.count(pid) == 0 && free_set_.insert(pid).second) {
      free_list_.push_back(pid);
    }
  }
}

void StableStore::PersistPageLocked(PageId pid, const char* data) {
  if (fd_ < 0) return;
  const off_t off = static_cast<off_t>(pid - 1) * options_.page_size;
  // pwrite lands in the kernel page cache: survives SIGKILL of this
  // process (the harness's failure model), like StableLog's backing.
  ::pwrite(fd_, data, options_.page_size, off);
}

PageId StableStore::Allocate() {
  std::lock_guard<std::mutex> guard(mu_);
  if (!free_list_.empty()) {
    PageId pid = free_list_.back();
    free_list_.pop_back();
    free_set_.erase(pid);
    return pid;
  }
  return next_page_id_++;
}

void StableStore::Free(PageId pid) {
  std::lock_guard<std::mutex> guard(mu_);
  if (pid == kInvalidPageId) return;
  if (free_set_.insert(pid).second) {
    free_list_.push_back(pid);
    if (pages_.erase(pid) > 0 && fd_ >= 0) {
      // Invalidate the slot's CRC so a reload sees it as free space.
      std::string zeros(options_.page_size, '\0');
      PersistPageLocked(pid, zeros.data());
    }
  }
}

Status StableStore::Write(PageId pid, const char* data) {
  std::lock_guard<std::mutex> guard(mu_);
  if (options_.write_fail_prob > 0 &&
      fault_rng_.Bernoulli(options_.write_fail_prob)) {
    return Status::IOError("injected write failure");
  }
  std::string copy(data, options_.page_size);
  const uint32_t crc = crc32c::Mask(
      crc32c::Value(copy.data() + 4, options_.page_size - 4));
  EncodeFixed32(copy.data(), crc);
  PersistPageLocked(pid, copy.data());
  pages_[pid] = std::move(copy);
  // A freed page that gets rewritten (recycled id) is live again.
  if (free_set_.erase(pid) > 0) {
    for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
      if (*it == pid) {
        free_list_.erase(it);
        break;
      }
    }
  }
  ++writes_;
  return Status::OK();
}

Status StableStore::Read(PageId pid, char* out) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = pages_.find(pid);
  if (it == pages_.end()) {
    return Status::NotFound("page not in stable store");
  }
  const std::string& stored = it->second;
  const uint32_t expected = crc32c::Unmask(DecodeFixed32(stored.data()));
  const uint32_t actual =
      crc32c::Value(stored.data() + 4, options_.page_size - 4);
  if (expected != actual) {
    return Status::Corruption("page checksum mismatch");
  }
  memcpy(out, stored.data(), options_.page_size);
  ++reads_;
  return Status::OK();
}

bool StableStore::Exists(PageId pid) const {
  std::lock_guard<std::mutex> guard(mu_);
  return pages_.count(pid) > 0;
}

void StableStore::CorruptForTest(PageId pid, uint32_t byte_offset) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = pages_.find(pid);
  if (it == pages_.end()) return;
  if (byte_offset >= options_.page_size) byte_offset = options_.page_size - 1;
  it->second[byte_offset] ^= 0x5a;
  PersistPageLocked(pid, it->second.data());
}

void StableStore::Reset() {
  std::lock_guard<std::mutex> guard(mu_);
  pages_.clear();
  free_list_.clear();
  free_set_.clear();
  next_page_id_ = 1;
  if (fd_ >= 0) {
    if (::ftruncate(fd_, 0) != 0) {
      // Fall back to slot invalidation: a reload treats a CRC-less slot
      // as free, so a failed truncate only wastes file space.
    }
  }
}

uint64_t StableStore::allocated_high_water() const {
  std::lock_guard<std::mutex> guard(mu_);
  return next_page_id_ - 1;
}

size_t StableStore::LivePageCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  return pages_.size();
}

}  // namespace untx
