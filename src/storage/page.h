// On-"disk" page format shared by the DC and the monolithic baseline.
//
// Layout of a page of size P with a reserved sync-trailer of size T:
//
//   [0,4)    crc        masked CRC32C of bytes [4, P), written by the store
//   [4,8)    page_id
//   [8,9)    page_type
//   [9,10)   flags
//   [10,12)  slot_count
//   [12,14)  free_lo    end of slot array / start of free gap
//   [14,16)  free_hi    start of record heap (grows down from P - T)
//   [16,24)  dlsn       DC system-transaction LSN (page LSN for monolithic)
//   [24,28)  next_page  right sibling / free-list link
//   [28,32)  prev_page  left sibling
//   [32,34)  level      B-tree level; 0 = leaf
//   [34,36)  trailer_len bytes of the sync trailer in use
//   [36,40)  table_id
//   [40,42)  garbage    reclaimable hole bytes in the record heap
//   [42,48)  reserved
//   [48,..)  slot array: slot_count entries of (u16 offset, u16 len)
//   ...      free space ...
//   ...      record heap, ending at P - T
//   [P-T,P)  sync trailer: serialized abstract LSNs (§5.1.2 "page sync")
#pragma once

#include <cstdint>

namespace untx {

inline constexpr uint32_t kDefaultPageSize = 8192;
/// Reserved bytes at the end of each page for the abLSN sync trailer.
/// Strategy 2 of §5.1.2 serializes the full abLSN here; if it does not
/// fit, the buffer pool falls back to waiting for the low-water mark.
inline constexpr uint32_t kDefaultTrailerCapacity = 256;

inline constexpr uint32_t kPageHeaderSize = 48;

enum class PageType : uint8_t {
  kFree = 0,
  kMeta = 1,      ///< Catalog page: table_id -> root page map.
  kInternal = 2,  ///< B-tree internal node: separator keys + child ids.
  kLeaf = 3,      ///< B-tree leaf: user records.
};

// Header field offsets.
inline constexpr uint32_t kPageOffCrc = 0;
inline constexpr uint32_t kPageOffPageId = 4;
inline constexpr uint32_t kPageOffType = 8;
inline constexpr uint32_t kPageOffFlags = 9;
inline constexpr uint32_t kPageOffSlotCount = 10;
inline constexpr uint32_t kPageOffFreeLo = 12;
inline constexpr uint32_t kPageOffFreeHi = 14;
inline constexpr uint32_t kPageOffDLsn = 16;
inline constexpr uint32_t kPageOffNextPage = 24;
inline constexpr uint32_t kPageOffPrevPage = 28;
inline constexpr uint32_t kPageOffLevel = 32;
inline constexpr uint32_t kPageOffTrailerLen = 34;
inline constexpr uint32_t kPageOffTableId = 36;
inline constexpr uint32_t kPageOffGarbage = 40;

inline constexpr uint32_t kSlotEntrySize = 4;  // u16 offset + u16 len

}  // namespace untx
