#include "storage/slotted_page.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "common/coding.h"

namespace untx {

uint16_t SlottedPage::GetU16(uint32_t off) const {
  return DecodeFixed16(buf_ + off);
}
void SlottedPage::SetU16(uint32_t off, uint16_t v) {
  EncodeFixed16(buf_ + off, v);
}
uint32_t SlottedPage::GetU32(uint32_t off) const {
  return DecodeFixed32(buf_ + off);
}
void SlottedPage::SetU32(uint32_t off, uint32_t v) {
  EncodeFixed32(buf_ + off, v);
}
uint64_t SlottedPage::GetU64(uint32_t off) const {
  return DecodeFixed64(buf_ + off);
}
void SlottedPage::SetU64(uint32_t off, uint64_t v) {
  EncodeFixed64(buf_ + off, v);
}

void SlottedPage::Init(PageId page_id, PageType type, uint16_t level,
                       TableId table_id) {
  memset(buf_, 0, page_size_);
  SetU32(kPageOffPageId, page_id);
  buf_[kPageOffType] = static_cast<char>(type);
  SetU16(kPageOffSlotCount, 0);
  SetU16(kPageOffFreeLo, static_cast<uint16_t>(kPageHeaderSize));
  SetU16(kPageOffFreeHi, static_cast<uint16_t>(body_end()));
  SetU64(kPageOffDLsn, 0);
  SetU32(kPageOffNextPage, kInvalidPageId);
  SetU32(kPageOffPrevPage, kInvalidPageId);
  SetU16(kPageOffLevel, level);
  SetU16(kPageOffTrailerLen, 0);
  SetU32(kPageOffTableId, table_id);
  SetU16(kPageOffGarbage, 0);
}

PageId SlottedPage::page_id() const { return GetU32(kPageOffPageId); }
PageType SlottedPage::type() const {
  return static_cast<PageType>(static_cast<uint8_t>(buf_[kPageOffType]));
}
uint16_t SlottedPage::slot_count() const { return GetU16(kPageOffSlotCount); }
DLsn SlottedPage::dlsn() const { return GetU64(kPageOffDLsn); }
void SlottedPage::set_dlsn(DLsn dlsn) { SetU64(kPageOffDLsn, dlsn); }
PageId SlottedPage::next_page() const { return GetU32(kPageOffNextPage); }
void SlottedPage::set_next_page(PageId pid) { SetU32(kPageOffNextPage, pid); }
PageId SlottedPage::prev_page() const { return GetU32(kPageOffPrevPage); }
void SlottedPage::set_prev_page(PageId pid) { SetU32(kPageOffPrevPage, pid); }
uint16_t SlottedPage::level() const { return GetU16(kPageOffLevel); }
TableId SlottedPage::table_id() const { return GetU32(kPageOffTableId); }
void SlottedPage::set_table_id(TableId tid) { SetU32(kPageOffTableId, tid); }
uint8_t SlottedPage::flags() const {
  return static_cast<uint8_t>(buf_[kPageOffFlags]);
}
void SlottedPage::set_flags(uint8_t flags) {
  buf_[kPageOffFlags] = static_cast<char>(flags);
}

uint16_t SlottedPage::trailer_len() const {
  return GetU16(kPageOffTrailerLen);
}

bool SlottedPage::WriteTrailer(const Slice& data) {
  if (data.size() > trailer_capacity_) return false;
  memcpy(buf_ + body_end(), data.data(), data.size());
  SetU16(kPageOffTrailerLen, static_cast<uint16_t>(data.size()));
  return true;
}

Slice SlottedPage::ReadTrailer() const {
  return Slice(buf_ + body_end(), trailer_len());
}

uint32_t SlottedPage::SlotArrayEnd() const {
  return kPageHeaderSize + slot_count() * kSlotEntrySize;
}

void SlottedPage::ReadSlot(uint16_t i, uint16_t* off, uint16_t* len) const {
  const uint32_t base = kPageHeaderSize + i * kSlotEntrySize;
  *off = GetU16(base);
  *len = GetU16(base + 2);
}

void SlottedPage::WriteSlot(uint16_t i, uint16_t off, uint16_t len) {
  const uint32_t base = kPageHeaderSize + i * kSlotEntrySize;
  SetU16(base, off);
  SetU16(base + 2, len);
}

Slice SlottedPage::PayloadAt(uint16_t i) const {
  assert(i < slot_count());
  uint16_t off, len;
  ReadSlot(i, &off, &len);
  return Slice(buf_ + off, len);
}

uint32_t SlottedPage::ContiguousFree() const {
  const uint32_t lo = SlotArrayEnd();
  const uint32_t hi = GetU16(kPageOffFreeHi);
  return hi > lo ? hi - lo : 0;
}

uint32_t SlottedPage::TotalFree() const {
  return ContiguousFree() + GetU16(kPageOffGarbage);
}

bool SlottedPage::HasSpaceFor(uint32_t n) const {
  return TotalFree() >= n + kSlotEntrySize;
}

double SlottedPage::FillFraction() const {
  const uint32_t usable = body_end() - kPageHeaderSize;
  uint32_t live = 0;
  for (uint16_t i = 0; i < slot_count(); ++i) {
    uint16_t off, len;
    ReadSlot(i, &off, &len);
    live += len + kSlotEntrySize;
  }
  return static_cast<double>(live) / usable;
}

Status SlottedPage::InsertAt(uint16_t i, const Slice& payload) {
  assert(i <= slot_count());
  if (payload.size() > 0xffff) {
    return Status::InvalidArgument("payload too large for slot");
  }
  const uint32_t need = static_cast<uint32_t>(payload.size());
  if (!HasSpaceFor(need)) {
    return Status::Busy("page full");
  }
  if (ContiguousFree() < need + kSlotEntrySize) {
    Compact();
    if (ContiguousFree() < need + kSlotEntrySize) {
      return Status::Busy("page full after compaction");
    }
  }
  // Claim heap space just below free_hi.
  const uint16_t new_off =
      static_cast<uint16_t>(GetU16(kPageOffFreeHi) - need);
  memcpy(buf_ + new_off, payload.data(), need);
  SetU16(kPageOffFreeHi, new_off);
  // Shift slot entries [i, count) up by one.
  const uint16_t count = slot_count();
  if (i < count) {
    memmove(buf_ + kPageHeaderSize + (i + 1) * kSlotEntrySize,
            buf_ + kPageHeaderSize + i * kSlotEntrySize,
            (count - i) * kSlotEntrySize);
  }
  WriteSlot(i, new_off, static_cast<uint16_t>(need));
  SetU16(kPageOffSlotCount, count + 1);
  SetU16(kPageOffFreeLo, static_cast<uint16_t>(SlotArrayEnd()));
  return Status::OK();
}

void SlottedPage::RemoveAt(uint16_t i) {
  assert(i < slot_count());
  uint16_t off, len;
  ReadSlot(i, &off, &len);
  const uint16_t count = slot_count();
  // Heap bytes become garbage, unless they are exactly at free_hi, in
  // which case the gap can be returned directly.
  if (off == GetU16(kPageOffFreeHi)) {
    SetU16(kPageOffFreeHi, static_cast<uint16_t>(off + len));
  } else {
    SetU16(kPageOffGarbage, static_cast<uint16_t>(GetU16(kPageOffGarbage) + len));
  }
  if (i + 1 < count) {
    memmove(buf_ + kPageHeaderSize + i * kSlotEntrySize,
            buf_ + kPageHeaderSize + (i + 1) * kSlotEntrySize,
            (count - i - 1) * kSlotEntrySize);
  }
  SetU16(kPageOffSlotCount, count - 1);
  SetU16(kPageOffFreeLo, static_cast<uint16_t>(SlotArrayEnd()));
}

Status SlottedPage::ReplaceAt(uint16_t i, const Slice& payload) {
  assert(i < slot_count());
  uint16_t off, len;
  ReadSlot(i, &off, &len);
  if (payload.size() <= len) {
    // Overwrite in place; tail becomes garbage.
    memcpy(buf_ + off, payload.data(), payload.size());
    WriteSlot(i, off, static_cast<uint16_t>(payload.size()));
    SetU16(kPageOffGarbage,
           static_cast<uint16_t>(GetU16(kPageOffGarbage) +
                                 (len - payload.size())));
    return Status::OK();
  }
  // Need more space: remove + insert keeps slot order stable.
  // Stash the old payload so we can restore on failure.
  std::string old(PayloadAt(i).ToString());
  RemoveAt(i);
  Status s = InsertAt(i, payload);
  if (!s.ok()) {
    Status restore = InsertAt(i, Slice(old));
    assert(restore.ok());
    (void)restore;
    return s;
  }
  return Status::OK();
}

void SlottedPage::Compact() {
  // Copy live payloads into a scratch buffer laid out from the top.
  std::vector<char> scratch(page_size_);
  uint32_t write_hi = body_end();
  const uint16_t count = slot_count();
  std::vector<std::pair<uint16_t, uint16_t>> new_slots(count);
  for (uint16_t i = 0; i < count; ++i) {
    uint16_t off, len;
    ReadSlot(i, &off, &len);
    write_hi -= len;
    memcpy(scratch.data() + write_hi, buf_ + off, len);
    new_slots[i] = {static_cast<uint16_t>(write_hi), len};
  }
  memcpy(buf_ + write_hi, scratch.data() + write_hi, body_end() - write_hi);
  for (uint16_t i = 0; i < count; ++i) {
    WriteSlot(i, new_slots[i].first, new_slots[i].second);
  }
  SetU16(kPageOffFreeHi, static_cast<uint16_t>(write_hi));
  SetU16(kPageOffGarbage, 0);
}

Status SlottedPage::Validate() const {
  const uint16_t count = slot_count();
  const uint32_t slot_end = kPageHeaderSize + count * kSlotEntrySize;
  const uint32_t free_hi = GetU16(kPageOffFreeHi);
  if (slot_end > free_hi) {
    return Status::Corruption("slot array overlaps heap");
  }
  if (free_hi > body_end()) {
    return Status::Corruption("free_hi beyond body end");
  }
  for (uint16_t i = 0; i < count; ++i) {
    uint16_t off, len;
    ReadSlot(i, &off, &len);
    if (off < free_hi || off + len > body_end()) {
      return Status::Corruption("slot payload out of heap bounds");
    }
  }
  if (trailer_len() > trailer_capacity_) {
    return Status::Corruption("trailer overflow");
  }
  return Status::OK();
}

}  // namespace untx
