#include "common/crc32c.h"

#include <array>

namespace untx {
namespace crc32c {

namespace {

// Table-driven CRC32C, one byte at a time. Generated at startup; speed is
// adequate for a simulation substrate (checksums are not on the hot path
// of the experiments).
struct Table {
  std::array<uint32_t, 256> entries;
  Table() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Table& GetTable() {
  static const Table table;
  return table;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Table& t = GetTable();
  uint32_t crc = init_crc ^ 0xffffffffu;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = t.entries[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace untx
