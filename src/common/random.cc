#include "common/random.h"

#include <cmath>

namespace untx {

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

Zipfian::Zipfian(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  // Cap the zeta computation; beyond this the tail contributes little and
  // workload generators call this once per benchmark.
  const uint64_t zeta_n = n_ > 100000 ? 100000 : n_;
  zetan_ = Zeta(zeta_n, theta_);
  if (zeta_n < n_) {
    // Approximate the remaining tail with the integral of x^-theta.
    if (theta_ != 1.0) {
      zetan_ += (std::pow(static_cast<double>(n_), 1.0 - theta_) -
                 std::pow(static_cast<double>(zeta_n), 1.0 - theta_)) /
                (1.0 - theta_);
    } else {
      zetan_ += std::log(static_cast<double>(n_) / zeta_n);
    }
  }
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t Zipfian::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace untx
