#include "common/status.h"

namespace untx {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kDeadlock:
      return "Deadlock";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kTimedOut:
      return "TimedOut";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kConflict:
      return "Conflict";
    case Status::Code::kCrashed:
      return "Crashed";
    case Status::Code::kAccessDenied:
      return "AccessDenied";
    case Status::Code::kShutdown:
      return "Shutdown";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

uint8_t StatusCodeToByte(Status::Code code) {
  return static_cast<uint8_t>(code);
}

Status StatusFromByte(uint8_t code, std::string msg) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound(std::move(msg));
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case Status::Code::kCorruption:
      return Status::Corruption(std::move(msg));
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case Status::Code::kIOError:
      return Status::IOError(std::move(msg));
    case Status::Code::kBusy:
      return Status::Busy(std::move(msg));
    case Status::Code::kDeadlock:
      return Status::Deadlock(std::move(msg));
    case Status::Code::kAborted:
      return Status::Aborted(std::move(msg));
    case Status::Code::kTimedOut:
      return Status::TimedOut(std::move(msg));
    case Status::Code::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case Status::Code::kConflict:
      return Status::Conflict(std::move(msg));
    case Status::Code::kCrashed:
      return Status::Crashed(std::move(msg));
    case Status::Code::kAccessDenied:
      return Status::AccessDenied(std::move(msg));
    case Status::Code::kShutdown:
      return Status::Shutdown(std::move(msg));
  }
  return Status::Corruption("unknown status code byte");
}

}  // namespace untx
