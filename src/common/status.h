// Status: RocksDB-style result type used throughout UnTx instead of
// exceptions. Every fallible operation returns a Status (or StatusOr<T>).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace untx {

/// Outcome of an operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,        ///< Key / page / table does not exist.
    kAlreadyExists = 2,   ///< Insert of a key that is present.
    kCorruption = 3,      ///< Checksum mismatch or malformed structure.
    kInvalidArgument = 4, ///< Caller error.
    kIOError = 5,         ///< Simulated storage failure.
    kBusy = 6,            ///< Transient refusal; caller should retry.
    kDeadlock = 7,        ///< Lock-manager victim; transaction must abort.
    kAborted = 8,         ///< Transaction was rolled back.
    kTimedOut = 9,        ///< Lock wait or message wait expired.
    kNotSupported = 10,   ///< Feature not available in this configuration.
    kConflict = 11,       ///< Conflicting concurrent operation detected.
    kCrashed = 12,        ///< Component is crashed / unavailable.
    kAccessDenied = 13,   ///< TC lacks write rights for the partition (§6).
    kShutdown = 14,       ///< Component is shutting down.
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Conflict(std::string msg = "") {
    return Status(Code::kConflict, std::move(msg));
  }
  static Status Crashed(std::string msg = "") {
    return Status(Code::kCrashed, std::move(msg));
  }
  static Status AccessDenied(std::string msg = "") {
    return Status(Code::kAccessDenied, std::move(msg));
  }
  static Status Shutdown(std::string msg = "") {
    return Status(Code::kShutdown, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsConflict() const { return code_ == Code::kConflict; }
  bool IsCrashed() const { return code_ == Code::kCrashed; }
  bool IsAccessDenied() const { return code_ == Code::kAccessDenied; }
  bool IsShutdown() const { return code_ == Code::kShutdown; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<code>: <message>" string for logs and tests.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Serializable numeric form of a Status code (for replies on the wire).
uint8_t StatusCodeToByte(Status::Code code);
Status StatusFromByte(uint8_t code, std::string msg = "");

}  // namespace untx
