// Software CRC32C (Castagnoli). Guards page images and log records so
// torn or corrupted simulated-storage reads are detected.
#pragma once

#include <cstddef>
#include <cstdint>

namespace untx {
namespace crc32c {

/// CRC of data[0, n); seed with a previous Value() call to chain.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masked CRC stored on disk (RocksDB-style) so that computing the CRC of
/// a buffer that embeds its own CRC does not produce fixed points.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace untx
