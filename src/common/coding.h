// Binary encoding helpers (RocksDB-style): fixed-width little-endian
// integers, LEB128 varints, and length-prefixed slices. Used for log
// records, page trailers, and wire messages.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace untx {

// ---- Fixed-width encoders -------------------------------------------------

inline void EncodeFixed16(char* buf, uint16_t value) {
  memcpy(buf, &value, sizeof(value));
}
inline void EncodeFixed32(char* buf, uint32_t value) {
  memcpy(buf, &value, sizeof(value));
}
inline void EncodeFixed64(char* buf, uint64_t value) {
  memcpy(buf, &value, sizeof(value));
}

inline uint16_t DecodeFixed16(const char* buf) {
  uint16_t v;
  memcpy(&v, buf, sizeof(v));
  return v;
}
inline uint32_t DecodeFixed32(const char* buf) {
  uint32_t v;
  memcpy(&v, buf, sizeof(v));
  return v;
}
inline uint64_t DecodeFixed64(const char* buf) {
  uint64_t v;
  memcpy(&v, buf, sizeof(v));
  return v;
}

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

// ---- Varint encoders ------------------------------------------------------

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Parses a varint32 from *input, advancing it. Returns false on underflow
/// or malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

/// Number of bytes PutVarint64 would write.
int VarintLength(uint64_t value);

// ---- Length-prefixed slices ------------------------------------------------

void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parses a length-prefixed slice; *result aliases input's buffer.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

// ---- Fixed-width readers over Slice ----------------------------------------

bool GetFixed16(Slice* input, uint16_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

}  // namespace untx
