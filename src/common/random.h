// Deterministic pseudo-random generator for workloads, fault injection
// and property tests. Xorshift128+: fast, seedable, reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace untx {

class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding avoids correlated low-entropy states.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 0x9e3779b97f4a7c15ull;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p (0 <= p <= 1).
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random printable-ish byte string of exactly len bytes.
  std::string Bytes(size_t len) {
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      out.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return out;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

/// Zipfian distribution over [0, n) with skew theta (0 = uniform-ish,
/// 0.99 = classic YCSB hot-spot). Used by workload generators.
class Zipfian {
 public:
  Zipfian(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;
};

}  // namespace untx
