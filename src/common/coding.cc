#include "common/coding.h"

namespace untx {

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[sizeof(value)];
  EncodeFixed16(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

namespace {
template <typename T, int kMaxShift>
bool GetVarintImpl(Slice* input, T* value) {
  T result = 0;
  const char* p = input->data();
  const char* limit = p + input->size();
  for (int shift = 0; shift <= kMaxShift && p < limit; shift += 7) {
    T byte = static_cast<unsigned char>(*p);
    ++p;
    if (byte & 0x80) {
      result |= ((byte & 0x7f) << shift);
    } else {
      result |= (byte << shift);
      *value = result;
      input->remove_prefix(p - input->data());
      return true;
    }
  }
  return false;
}
}  // namespace

bool GetVarint32(Slice* input, uint32_t* value) {
  return GetVarintImpl<uint32_t, 28>(input, value);
}

bool GetVarint64(Slice* input, uint64_t* value) {
  return GetVarintImpl<uint64_t, 63>(input, value);
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

bool GetFixed16(Slice* input, uint16_t* value) {
  if (input->size() < sizeof(uint16_t)) return false;
  *value = DecodeFixed16(input->data());
  input->remove_prefix(sizeof(uint16_t));
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < sizeof(uint32_t)) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(sizeof(uint32_t));
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < sizeof(uint64_t)) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(sizeof(uint64_t));
  return true;
}

}  // namespace untx
