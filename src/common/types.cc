#include "common/types.h"

namespace untx {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kRead:
      return "Read";
    case OpType::kInsert:
      return "Insert";
    case OpType::kUpdate:
      return "Update";
    case OpType::kDelete:
      return "Delete";
    case OpType::kUpsert:
      return "Upsert";
    case OpType::kProbeNext:
      return "ProbeNext";
    case OpType::kScanRange:
      return "ScanRange";
    case OpType::kPromoteVersion:
      return "PromoteVersion";
    case OpType::kRollbackVersion:
      return "RollbackVersion";
    case OpType::kCreateTable:
      return "CreateTable";
  }
  return "Unknown";
}

}  // namespace untx
