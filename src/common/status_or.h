// StatusOr<T>: either a value or a non-OK Status.
#pragma once

#include <cassert>
#include <utility>

#include "common/status.h"

namespace untx {

/// Holds either an OK status plus a T, or a non-OK Status.
/// Accessing value() on a non-OK StatusOr is a programming error (asserts).
template <typename T>
class StatusOr {
 public:
  /// Implicit from Status so `return Status::NotFound();` works.
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok());
  }
  /// Implicit from T so `return value;` works.
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)), has_value_(true) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(has_value_);
    return value_;
  }
  const T& value() const {
    assert(has_value_);
    return value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out; the StatusOr must be OK.
  T ValueOrDie() && {
    assert(has_value_);
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

}  // namespace untx
