// Core identifier types shared by the TC, the DC, and the wire protocol.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace untx {

/// TC log sequence number. The TC assigns one per logical operation at
/// log-reservation time (before dispatch), so a DC can observe LSNs out
/// of arrival order (§5.1 of the paper). LSN 0 is "invalid / none".
using Lsn = uint64_t;
inline constexpr Lsn kInvalidLsn = 0;
inline constexpr Lsn kMaxLsn = std::numeric_limits<Lsn>::max();

/// DC-local log sequence number for system transactions (§5.2.2).
using DLsn = uint64_t;
inline constexpr DLsn kInvalidDLsn = 0;

/// Transaction identifier, assigned by the owning TC.
using TxnId = uint64_t;
inline constexpr TxnId kInvalidTxnId = 0;

/// Identifies a TC instance. Multiple TCs may share a DC (§6); each page
/// then tracks one abstract LSN per TC that has data on it (§6.1.1).
using TcId = uint16_t;
inline constexpr TcId kInvalidTcId = std::numeric_limits<TcId>::max();

/// Identifies a DC instance within a deployment.
using DcId = uint16_t;

/// Physical page number within one DC's stable store.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0;

/// Table identifier; the catalog maps it to a B-tree root.
using TableId = uint32_t;
inline constexpr TableId kInvalidTableId = 0;

/// Logical operation verbs of the TC:DC record interface (§4.1.2).
/// The DC executes each atomically and idempotently; it never learns
/// which user transaction an operation belongs to.
enum class OpType : uint8_t {
  kRead = 1,        ///< Point read of a key.
  kInsert = 2,      ///< Insert; fails with kAlreadyExists if present.
  kUpdate = 3,      ///< Overwrite; reply carries the before-value for undo.
  kDelete = 4,      ///< Remove; reply carries the before-value for undo.
  kUpsert = 5,      ///< Insert-or-update; reply says which happened.
  kProbeNext = 6,   ///< Fetch-ahead probe: next k keys >= key (§3.1).
  kScanRange = 7,   ///< Read keys+values in [key, end_key), bounded count.
  kPromoteVersion = 8,   ///< Versioning: drop before-version (commit, §6.2.2).
  kRollbackVersion = 9,  ///< Versioning: drop after-version (abort, §6.2.2).
  kCreateTable = 10,     ///< DDL: create a B-tree for table_id.
};

/// Read flavors for cross-TC sharing (§6.2). A TC reading its own
/// partition uses kOwn and sees its own uncommitted writes.
enum class ReadFlavor : uint8_t {
  kOwn = 0,            ///< Reader is the writer TC: latest version.
  kDirty = 1,          ///< Uncommitted read; no versioning needed (§6.2.1).
  kReadCommitted = 2,  ///< Before-version if one exists (§6.2.2).
};

/// True for verbs that can modify page state (and therefore must enter
/// the page's abstract LSN when applied).
inline bool IsWriteOp(OpType op) {
  switch (op) {
    case OpType::kInsert:
    case OpType::kUpdate:
    case OpType::kDelete:
    case OpType::kUpsert:
    case OpType::kPromoteVersion:
    case OpType::kRollbackVersion:
    case OpType::kCreateTable:
      return true;
    case OpType::kRead:
    case OpType::kProbeNext:
    case OpType::kScanRange:
      return false;
  }
  return false;
}

const char* OpTypeName(OpType op);

}  // namespace untx
